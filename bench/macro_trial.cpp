// Macro benchmarks: full run_trial end-to-end, scenario x mapper x level.
//
// The micro_* benches time individual prob-layer kernels; these time the
// quantity the sweep grids actually multiply — one complete simulated
// trial (trace generation, every mapping event, dropper passes, metric
// reduction) — so mapping-event-level optimisations (the appended-
// distribution cache, the O(1) batch queue, tail-mean memoisation) are
// judged on trial throughput rather than kernel latency. Scenarios and
// cost models are built once per configuration outside the timed loop;
// each iteration runs trial 0 of the configuration, the same work a sweep
// cell performs per trial.
#include <benchmark/benchmark.h>

#include "cost/cost_model.hpp"
#include "exp/experiment.hpp"

namespace {

using namespace taskdrop;

struct TrialCase {
  const char* name;
  ScenarioKind scenario;
  const char* mapper;
  const char* dropper;
  int n_tasks;
  double oversubscription;
  int candidate_window;
  bool conditioned = false;
  /// Mean time between failures; 0 disables failure injection.
  double mtbf = 0.0;
  double mttr = 0.0;
  /// Forces invalidate-and-rebuild instead of the chain-keeping fast
  /// paths — the A/B partner that quantifies what the keeps buy.
  bool paranoid = false;
  /// Per-machine queue depth; deeper queues make every full-chain rebuild
  /// proportionally more expensive, which is the regime the keeps target.
  int queue_capacity = 6;
};

// The paper-shaped cases run PAM/MM with the proactive heuristic at the
// figures' 3.0-oversubscription level. PAM_deep is the mapper-bound
// regime the appended-distribution cache targets: reactive-only dropping,
// heavy oversubscription (the batch stays thousands of tasks deep) and a
// 1024-deep candidate window, so nearly all trial time is phase-1/phase-2
// scanning.
constexpr TrialCase kCases[] = {
    {"spec_hc/PAM/1k", ScenarioKind::SpecHC, "PAM", "heuristic", 1000, 3.0,
     256},
    {"spec_hc/PAM/4k", ScenarioKind::SpecHC, "PAM", "heuristic", 4000, 3.0,
     256},
    {"spec_hc/PAM/10k", ScenarioKind::SpecHC, "PAM", "heuristic", 10000, 3.0,
     256},
    {"spec_hc/PAM_deep/5k", ScenarioKind::SpecHC, "PAM", "reactive", 5000,
     20.0, 1024},
    {"spec_hc/MM/10k", ScenarioKind::SpecHC, "MM", "heuristic", 10000, 3.0,
     256},
    {"video/PAM/4k", ScenarioKind::Video, "PAM", "heuristic", 4000, 3.0, 256},
    {"video/MM/4k", ScenarioKind::Video, "MM", "heuristic", 4000, 3.0, 256},
    // Chain-keeping A/B pairs. *_cond runs with condition_running (every
    // clock advance used to invalidate and rebuild each running machine's
    // chain); *_fail runs a volatile fleet (every head start used to
    // blanket-invalidate). The paranoid twin of each pair forces the old
    // invalidate-and-rebuild behaviour, so keep/paranoid on the same line
    // of BENCH_macro.json is the speedup the keeps buy at trial
    // granularity. PAM_cond is the paper-shaped mix (proactive heuristic
    // dropper, so A/B-identical mapper+dropper scanning dilutes the
    // ratio); PAM_cond_thr swaps in the cheap threshold dropper, leaving
    // chain maintenance as the dominant cost — the regime ROADMAP item 5's
    // failure-first study runs in — where the keeps are worth ~2-3x.
    {"spec_hc/PAM_cond/4k", ScenarioKind::SpecHC, "PAM", "heuristic", 4000,
     6.0, 256, /*conditioned=*/true, 0.0, 0.0, /*paranoid=*/false,
     /*queue_capacity=*/24},
    {"spec_hc/PAM_cond_paranoid/4k", ScenarioKind::SpecHC, "PAM", "heuristic",
     4000, 6.0, 256, /*conditioned=*/true, 0.0, 0.0, /*paranoid=*/true,
     /*queue_capacity=*/24},
    {"spec_hc/PAM_cond_thr/4k", ScenarioKind::SpecHC, "PAM", "threshold",
     4000, 16.0, 256, /*conditioned=*/true, 0.0, 0.0, /*paranoid=*/false,
     /*queue_capacity=*/24},
    {"spec_hc/PAM_cond_thr_paranoid/4k", ScenarioKind::SpecHC, "PAM",
     "threshold", 4000, 16.0, 256, /*conditioned=*/true, 0.0, 0.0,
     /*paranoid=*/true, /*queue_capacity=*/24},
    {"spec_hc/PAM_fail/4k", ScenarioKind::SpecHC, "PAM", "threshold", 4000,
     12.0, 256, /*conditioned=*/false, /*mtbf=*/20000.0, /*mttr=*/2000.0,
     /*paranoid=*/false, /*queue_capacity=*/48},
    {"spec_hc/PAM_fail_paranoid/4k", ScenarioKind::SpecHC, "PAM", "threshold",
     4000, 12.0, 256, /*conditioned=*/false, /*mtbf=*/20000.0,
     /*mttr=*/2000.0, /*paranoid=*/true, /*queue_capacity=*/48},
};

void BM_RunTrial(benchmark::State& state, const TrialCase& c) {
  ExperimentConfig config;
  config.scenario = c.scenario;
  config.mapper = c.mapper;
  config.dropper = DropperConfig::from_spec(c.dropper);
  config.workload.n_tasks = c.n_tasks;
  config.workload.oversubscription = c.oversubscription;
  config.candidate_window = c.candidate_window;
  config.condition_running = c.conditioned;
  config.paranoid_invalidate = c.paranoid;
  config.queue_capacity = c.queue_capacity;
  if (c.mtbf > 0.0) {
    config.failures.enabled = true;
    config.failures.mean_time_between_failures = c.mtbf;
    config.failures.mean_time_to_repair = c.mttr;
  }
  config.trials = 1;
  const Scenario scenario = build_scenario(config);
  const CostModel cost_model(scenario.profile.cost_per_hour);
  for (auto _ : state) {
    const TrialMetrics metrics =
        run_trial(config, scenario, cost_model, /*trial=*/0);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * c.n_tasks);
}

[[maybe_unused]] const int kRegistered = [] {
  for (const TrialCase& c : kCases) {
    benchmark::RegisterBenchmark(c.name, BM_RunTrial, c)
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
