#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 7a — proactive task dropping across mapping heuristics, "
      "heterogeneous system (30k level)",
      taskdrop::fig7a_hetero_mappers);
}
