#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 8 — PAM+Optimal vs PAM+Heuristic vs PAM+Threshold across "
      "oversubscription levels (plus section V-F reactive-drop share)",
      taskdrop::fig8_dropping_variants);
}
