#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 9 — normalised incurred cost (cost / robustness) across "
      "oversubscription levels",
      taskdrop::fig9_cost);
}
