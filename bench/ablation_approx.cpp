#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Extension — approximate computing (section VI future work): dropping "
      "only vs drop-or-downgrade, robustness and weighted utility",
      taskdrop::ablation_approx);
}
