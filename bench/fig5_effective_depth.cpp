#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 5 — impact of effective depth (eta) on system robustness "
      "(PAM + proactive dropping heuristic)",
      taskdrop::fig5_effective_depth);
}
