#!/usr/bin/env python3
"""Unit tests for the per-benchmark threshold table of check_threshold.py.

Run directly or via ctest (the bench_threshold_unit test):

    python3 bench/test_check_threshold.py
"""
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_threshold as ct


class ThresholdForTest(unittest.TestCase):
    def test_default_ratio_for_slow_benches(self):
        self.assertEqual(ct.threshold_for("suite/BM_Big/512", 50_000.0, 1.5),
                         1.5)
        self.assertEqual(
            ct.threshold_for("suite/BM_Big/512", ct.SUB_MICROSECOND_NS, 1.5),
            1.5)

    def test_sub_microsecond_benches_are_widened(self):
        self.assertEqual(ct.threshold_for("suite/BM_Tiny/8", 73.0, 1.5),
                         1.5 * ct.SUB_MICROSECOND_FACTOR)
        self.assertEqual(
            ct.threshold_for("suite/BM_Tiny/8",
                             ct.SUB_MICROSECOND_NS - 1.0, 2.0),
            2.0 * ct.SUB_MICROSECOND_FACTOR)

    def test_exact_override_wins_over_both_rules(self):
        key = "suite/BM_Pinned"
        ct.PER_BENCH_MAX_RATIO[key] = 4.0
        try:
            # Overrides beat the sub-microsecond widening...
            self.assertEqual(ct.threshold_for(key, 10.0, 1.5), 4.0)
            # ...and the base ratio.
            self.assertEqual(ct.threshold_for(key, 1e6, 1.5), 4.0)
        finally:
            del ct.PER_BENCH_MAX_RATIO[key]

    def test_committed_overrides_are_sane(self):
        for key, ratio in ct.PER_BENCH_MAX_RATIO.items():
            self.assertGreater(ratio, 1.0, key)
            self.assertIn("/", key)


class LoadTest(unittest.TestCase):
    @staticmethod
    def _write(payload):
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump(payload, handle)
        handle.close()
        return handle.name

    def _load(self, payload):
        path = self._write(payload)
        try:
            return ct.load(path)
        finally:
            os.unlink(path)

    def test_accepts_micro_and_macro_schemas(self):
        for schema in ct.ACCEPTED_SCHEMAS:
            times = self._load({
                "schema": schema,
                "benchmarks": {
                    "suite": {"benchmarks": [
                        {"name": "BM_A/8", "cpu_time": 2.0,
                         "time_unit": "us"},
                        {"name": "BM_A_mean", "cpu_time": 2.0,
                         "run_type": "aggregate"},
                    ]},
                },
            })
            self.assertEqual(times, {"suite/BM_A/8": 2000.0})

    def test_rejects_unknown_schema(self):
        path = self._write({"schema": "nonsense/v9", "benchmarks": {}})
        try:
            with self.assertRaises(SystemExit):
                ct.load(path)
        finally:
            os.unlink(path)


if __name__ == "__main__":
    unittest.main()
