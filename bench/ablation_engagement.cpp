#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Ablation — dropper engagement policy: on-deadline-miss (section V-A) "
      "vs every mapping event (Fig. 4)",
      taskdrop::ablation_engagement);
}
