#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Ablation — running-task completion PMF: unconditioned (paper) vs "
      "conditioned on not-finished-yet (repo extension)",
      taskdrop::ablation_conditioning);
}
