// Micro benchmarks for the complexity claims of section IV-F, factor (B):
// the cost of one convolution as a function of the number of impulses, for
// both the plain and the deadline-truncated variants, plus the O(|tail|)
// chance_if_appended fast path used by PAM.
#include <benchmark/benchmark.h>

#include "pet/pet_builder.hpp"
#include "prob/convolution.hpp"
#include "util/rng.hpp"

namespace {

using namespace taskdrop;

Pmf make_pmf(int impulses, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Tick, double>> points;
  points.reserve(static_cast<std::size_t>(impulses));
  for (int i = 0; i < impulses; ++i) {
    points.emplace_back(5 * (i + 10), rng.uniform01());
  }
  Pmf pmf = Pmf::from_impulses(std::move(points), 5);
  pmf.normalize();
  return pmf;
}

void BM_Convolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Pmf a = make_pmf(n, 1);
  const Pmf b = make_pmf(n, 2);
  for (auto _ : state) {
    // This bench measures the allocating kernel on purpose, as the
    // workspace baseline. layering-allow(direct-convolve)
    benchmark::DoNotOptimize(convolve(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Convolve)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_DeadlineConvolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Pmf pred = make_pmf(n, 3);
  const Pmf exec = make_pmf(n, 4);
  // Deadline in the middle of the predecessor support: half the mass
  // convolves, half passes through.
  const Tick deadline = (pred.min_time() + pred.max_time()) / 2;
  for (auto _ : state) {
    // layering-allow(direct-convolve): allocating-kernel baseline.
    benchmark::DoNotOptimize(deadline_convolve(pred, exec, deadline));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DeadlineConvolve)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_GammaPetCell(benchmark::State& state) {
  // Cost of building one PET cell with the paper's recipe (500 samples).
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gamma_execution_pmf(rng, 125.0, 10.0, 500, 5));
  }
}
BENCHMARK(BM_GammaPetCell);

}  // namespace

BENCHMARK_MAIN();
