#!/usr/bin/env bash
# Run a set of Google-Benchmark binaries and merge the results into one
# JSON baseline.
#
#   bench/run_all.sh <bin-dir> [out.json] [schema] [bench ...]
#
# <bin-dir> is the directory holding the bench binaries (e.g. build/bench).
# Defaults reproduce the micro baseline; the macro baseline is
#
#   bench/run_all.sh build/bench BENCH_macro.json taskdrop-bench-macro/v1 macro_trial
#
# Also available as `cmake --build build --target bench_micro` /
# `... --target bench_macro`, which write BENCH_micro.json /
# BENCH_macro.json in the repository root.
#
# The macro baseline doubles as the per-shard cost model for sharded
# sweeps: one (cell, trial) unit of `taskdrop_cli sweep` costs about one
# macro_trial run of its (scenario, mapper, level), so size the shard
# count in tools/sweep_shards.sh from BENCH_macro.json (see the README's
# "Sharded sweeps" section).
set -euo pipefail

bin_dir=${1:?usage: run_all.sh <bin-dir> [out.json] [schema] [bench ...]}
out=${2:-BENCH_micro.json}
schema=${3:-taskdrop-bench-micro/v1}
shift $(( $# > 3 ? 3 : $# ))
benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
  benches=(micro_chain micro_completion micro_convolution micro_dropper
           micro_online)
fi

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

for bench in "${benches[@]}"; do
  exe="$bin_dir/$bench"
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not found or not executable (build the bench targets first)" >&2
    exit 1
  fi
  echo "== $bench =="
  "$exe" --benchmark_format=console \
         --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json
done

python3 - "$out" "$schema" "$tmp_dir" "${benches[@]}" <<'EOF'
import json, sys
out, schema, tmp_dir, names = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4:]
merged = {"schema": schema, "benchmarks": {}}
for name in names:
    with open(f"{tmp_dir}/{name}.json") as fh:
        merged["benchmarks"][name] = json.load(fh)
merged["context"] = merged["benchmarks"][names[0]].get("context", {})
with open(out, "w") as fh:
    json.dump(merged, fh, indent=2)
    fh.write("\n")
print(f"wrote {out}")
EOF
