#!/usr/bin/env bash
# Run every micro benchmark and merge the results into one JSON baseline.
#
#   bench/run_all.sh <bin-dir> [out.json]
#
# <bin-dir> is the directory holding the micro_* binaries (e.g.
# build/bench). Also available as `cmake --build build --target bench_micro`,
# which writes BENCH_micro.json in the repository root.
set -euo pipefail

bin_dir=${1:?usage: run_all.sh <bin-dir> [out.json]}
out=${2:-BENCH_micro.json}
tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

benches=(micro_chain micro_completion micro_convolution micro_dropper)
for bench in "${benches[@]}"; do
  exe="$bin_dir/$bench"
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not found or not executable (build the bench targets first)" >&2
    exit 1
  fi
  echo "== $bench =="
  "$exe" --benchmark_format=console \
         --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json
done

python3 - "$out" "$tmp_dir" "${benches[@]}" <<'EOF'
import json, sys
out, tmp_dir, names = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"schema": "taskdrop-bench-micro/v1", "benchmarks": {}}
for name in names:
    with open(f"{tmp_dir}/{name}.json") as fh:
        merged["benchmarks"][name] = json.load(fh)
merged["context"] = merged["benchmarks"][names[0]].get("context", {})
with open(out, "w") as fh:
    json.dump(merged, fh, indent=2)
    fh.write("\n")
print(f"wrote {out}")
EOF
