// Micro benchmarks for the online admission service: steady-state
// per-decision latency of the OnlineScheduler callback path as a function
// of machine-queue depth. One iteration is one finish + one arrival on a
// single saturated machine — two mapping events that each walk the
// completion-model chain of a depth-q queue — so this is the per-event
// cost a serve daemon pays once warm (chain updates are O(q)
// convolutions; the dropper sees every queue on both events).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/proactive_heuristic_dropper.hpp"
#include "online/online_scheduler.hpp"
#include "sched/registry.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

/// Keeps a single machine's queue pinned at `depth` tasks (running head
/// included): every iteration finishes the head and admits one
/// replacement with a far-off deadline, so the dropper never changes the
/// occupancy and the measured work is the pure decision path.
void BM_OnlineSteadyState(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Scenario& scn = scenario();
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  OnlineConfig config;
  config.queue_capacity = depth;
  OnlineScheduler scheduler(scn.pet, {0}, *mapper, dropper, config);

  // Far enough out that every queued task's completion chance stays at
  // one; tight deadlines would let the dropper drain the queue.
  const Tick slack = 1 << 28;
  Tick now = 0;
  const auto confirm = [&](const std::vector<Decision>& decisions) {
    for (const Decision& decision : decisions) {
      if (decision.kind == DecisionKind::Start) {
        scheduler.task_started(now, decision.machine, decision.task);
      }
    }
  };
  TaskTypeId next_type = 0;
  const auto arrive = [&] {
    confirm(scheduler.task_arrived(now, next_type, now + slack));
    next_type = static_cast<TaskTypeId>(
        (next_type + 1) % scn.pet.task_type_count());
  };
  for (int i = 0; i < depth; ++i) arrive();

  for (auto _ : state) {
    ++now;
    confirm(scheduler.task_finished(now, 0));
    arrive();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // mapping events
}
BENCHMARK(BM_OnlineSteadyState)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
