// Micro benchmarks for the online admission service: steady-state
// per-decision latency of the OnlineScheduler callback path as a function
// of machine-queue depth. One iteration is one finish + one arrival on a
// single saturated machine — two mapping events that each walk the
// completion-model chain of a depth-q queue — so this is the per-event
// cost a serve daemon pays once warm (chain updates are O(q)
// convolutions; the dropper sees every queue on both events).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/proactive_heuristic_dropper.hpp"
#include "online/online_scheduler.hpp"
#include "online/snapshot.hpp"
#include "sched/registry.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

/// Keeps a single machine's queue pinned at `depth` tasks (running head
/// included): every iteration finishes the head and admits one
/// replacement with a far-off deadline, so the dropper never changes the
/// occupancy and the measured work is the pure decision path.
void BM_OnlineSteadyState(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Scenario& scn = scenario();
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  OnlineConfig config;
  config.queue_capacity = depth;
  OnlineScheduler scheduler(scn.pet, {0}, *mapper, dropper, config);

  // Far enough out that every queued task's completion chance stays at
  // one; tight deadlines would let the dropper drain the queue.
  const Tick slack = 1 << 28;
  Tick now = 0;
  const auto confirm = [&](const std::vector<Decision>& decisions) {
    for (const Decision& decision : decisions) {
      if (decision.kind == DecisionKind::Start) {
        scheduler.task_started(now, decision.machine, decision.task);
      }
    }
  };
  TaskTypeId next_type = 0;
  const auto arrive = [&] {
    confirm(scheduler.task_arrived(now, next_type, now + slack));
    next_type = static_cast<TaskTypeId>(
        (next_type + 1) % scn.pet.task_type_count());
  };
  for (int i = 0; i < depth; ++i) arrive();

  for (auto _ : state) {
    ++now;
    confirm(scheduler.task_finished(now, 0));
    arrive();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // mapping events
}
BENCHMARK(BM_OnlineSteadyState)->RangeMultiplier(2)->Range(8, 64);

/// Snapshot/restore round trip at a given fleet backlog: one iteration
/// serializes a warm scheduler and restores the text into a fresh kernel
/// stack — the price of one checkpoint plus one cold resume of the
/// admission daemon. Derived state (completion chains) rebuilds lazily
/// after restore, so this measures the serialization path itself.
void BM_OnlineSnapshotRoundTrip(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  const Scenario& scn = scenario();
  auto mapper = make_mapper("PAM");
  ProactiveHeuristicDropper dropper;
  OnlineConfig config;
  config.queue_capacity = 6;
  OnlineScheduler scheduler(scn.pet, scn.profile.machine_types, *mapper,
                            dropper, config);

  const Tick slack = 1 << 28;
  Tick now = 0;
  TaskTypeId next_type = 0;
  for (int i = 0; i < backlog; ++i) {
    ++now;
    const auto& decisions =
        scheduler.task_arrived(now, next_type, now + slack);
    for (const Decision& decision : decisions) {
      if (decision.kind == DecisionKind::Start) {
        scheduler.task_started(now, decision.machine, decision.task);
      }
    }
    next_type = static_cast<TaskTypeId>(
        (next_type + 1) % scn.pet.task_type_count());
  }

  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string snapshot = snapshot_to_string(scheduler);
    bytes = snapshot.size();
    auto fresh_mapper = make_mapper("PAM");
    ProactiveHeuristicDropper fresh_dropper;
    OnlineScheduler restored(scn.pet, scn.profile.machine_types,
                             *fresh_mapper, fresh_dropper, config);
    restore_from_string(restored, snapshot);
    benchmark::DoNotOptimize(restored.now());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_OnlineSnapshotRoundTrip)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

BENCHMARK_MAIN();
