#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 7b — proactive task dropping across mapping heuristics, "
      "homogeneous system (30k level)",
      taskdrop::fig7b_homog_mappers);
}
