#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Fig. 10 — proactive task dropping on the video-transcoding workload "
      "(moderate oversubscription)",
      taskdrop::fig10_video);
}
