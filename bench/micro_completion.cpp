// Micro benchmarks for the completion-model cache: the cost of the common
// mapping-event mutations (append one task; drop one mid-queue task) versus
// recomputing a whole queue chain from scratch — the practical-cost
// argument of section IV-F.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/sandbox.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

std::unique_ptr<SystemSandbox> make_queue(int depth) {
  const Scenario& scn = scenario();
  auto sandbox = std::make_unique<SystemSandbox>(
      scn.pet, std::vector<MachineTypeId>{0}, depth + 2);
  const double mean = scn.pet.mean_overall();
  for (int i = 0; i < depth; ++i) {
    sandbox->enqueue(0, static_cast<TaskTypeId>(i % scn.pet.task_type_count()),
                     static_cast<Tick>(mean * (2.0 + i)));
  }
  return sandbox;
}

void BM_FullChainRecompute(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  for (auto _ : state) {
    sandbox->model(0).invalidate_all();
    benchmark::DoNotOptimize(sandbox->model(0).instantaneous_robustness());
  }
}
BENCHMARK(BM_FullChainRecompute)->DenseRange(2, 8, 2);

void BM_IncrementalAppend(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Scenario& scn = scenario();
  const auto deadline = static_cast<Tick>(scn.pet.mean_overall() * 12.0);
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth);
    // Warm the cache up to the current tail.
    sandbox->model(0).instantaneous_robustness();
    state.ResumeTiming();
    // The measured mutation: append + query the new tail only.
    sandbox->enqueue(0, 0, deadline);
    benchmark::DoNotOptimize(
        sandbox->model(0).chance(sandbox->machine(0).queue.size() - 1));
  }
}
BENCHMARK(BM_IncrementalAppend)->DenseRange(2, 8, 2);

void BM_ChanceIfAppended(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  const Scenario& scn = scenario();
  const auto deadline = static_cast<Tick>(scn.pet.mean_overall() * 12.0);
  sandbox->model(0).instantaneous_robustness();  // warm cache
  for (auto _ : state) {
    // PAM's phase-1 primitive: no PMF materialisation at all.
    benchmark::DoNotOptimize(sandbox->model(0).chance_if_appended(0, deadline));
  }
}
BENCHMARK(BM_ChanceIfAppended)->DenseRange(2, 8, 2);

}  // namespace

BENCHMARK_MAIN();
