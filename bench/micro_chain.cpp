// Micro benchmarks for the incremental completion-chain machinery on deep
// queues — the regime the (cell x trial) sweep grids of PR 2 multiply: one
// mapping event probes every machine's tail (chance_if_appended), appends
// one task (a single suffix re-convolution under dirty-index tracking), and
// occasionally re-roots a provisional window chain (the droppers' Eqs. 4-6
// walk, allocation-free through a PmfWorkspace).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/sandbox.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

std::unique_ptr<SystemSandbox> make_queue(int depth) {
  const Scenario& scn = scenario();
  auto sandbox = std::make_unique<SystemSandbox>(
      scn.pet, std::vector<MachineTypeId>{0}, depth + 2);
  const double mean = scn.pet.mean_overall();
  for (int i = 0; i < depth; ++i) {
    sandbox->enqueue(0, static_cast<TaskTypeId>(i % scn.pet.task_type_count()),
                     static_cast<Tick>(mean * (2.0 + i)));
  }
  return sandbox;
}

/// PAM's phase-1 probe against an already-cached deep tail. With the
/// revision-keyed appended-distribution cache a repeated probe is a pure
/// memo lookup, independent of the tail PMF's support width.
void BM_DeepChanceIfAppended(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  const auto deadline =
      static_cast<Tick>(scenario().pet.mean_overall() * (depth + 4.0));
  sandbox->model(0).instantaneous_robustness();  // warm the chain cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sandbox->model(0).chance_if_appended(0, deadline));
  }
}
BENCHMARK(BM_DeepChanceIfAppended)->RangeMultiplier(2)->Range(8, 64);

/// A phase-1 scan shape: many *distinct* deadlines against one warm tail.
/// Each first touch of a lattice cell folds only the O(|exec|) unsaturated
/// window on top of the cached saturated prefix; repeats are O(1).
void BM_DeepAppendedScan(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  const double mean = scenario().pet.mean_overall();
  sandbox->model(0).instantaneous_robustness();  // warm the chain cache
  const auto base = static_cast<Tick>(mean * depth);
  for (auto _ : state) {
    double sum = 0.0;
    for (Tick d = 0; d < 64; ++d) {
      sum += sandbox->model(0).chance_if_appended(0, base + 3 * d);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DeepAppendedScan)->RangeMultiplier(2)->Range(8, 64);

/// The common mapping-event mutation at depth: append one task and query
/// only the new tail. Dirty-index tracking makes this a single
/// deadline-truncated convolution regardless of queue depth.
void BM_DeepIncrementalAppend(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto deadline =
      static_cast<Tick>(scenario().pet.mean_overall() * (depth + 4.0));
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth);
    sandbox->model(0).instantaneous_robustness();  // warm the chain cache
    state.ResumeTiming();
    sandbox->enqueue(0, 0, deadline);
    benchmark::DoNotOptimize(
        sandbox->model(0).chance(sandbox->machine(0).queue.size() - 1));
  }
}
BENCHMARK(BM_DeepIncrementalAppend)->RangeMultiplier(2)->Range(8, 64);

/// The proactive heuristic's provisional-drop window (Eqs. 4-6): re-root a
/// chain at a mid-queue predecessor and re-convolve an eta-deep window,
/// entirely inside a reused workspace.
void BM_DeepWindowChance(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  CompletionModel& model = sandbox->model(0);
  model.instantaneous_robustness();  // warm the chain cache
  const auto pos = static_cast<std::size_t>(depth / 2);
  PmfWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        window_chance_sum(model.predecessor(pos), sandbox->machine(0),
                          *sandbox->view().tasks, scenario().pet, pos + 1,
                          pos + 2, nullptr, &ws));
  }
}
BENCHMARK(BM_DeepWindowChance)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
