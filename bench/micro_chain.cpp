// Micro benchmarks for the incremental completion-chain machinery on deep
// queues — the regime the (cell x trial) sweep grids of PR 2 multiply: one
// mapping event probes every machine's tail (chance_if_appended), appends
// one task (a single suffix re-convolution under dirty-index tracking), and
// occasionally re-roots a provisional window chain (the droppers' Eqs. 4-6
// walk, allocation-free through a PmfWorkspace).
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/sandbox.hpp"
#include "prob/convolution.hpp"
// layering-allow(fft-plan): the wide-PMF benches toggle the crossover gate
// directly to measure direct-vs-FFT on the same inputs.
#include "prob/fft.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace taskdrop;

const Scenario& scenario() {
  static const Scenario s = make_scenario(ScenarioKind::SpecHC, 42);
  return s;
}

std::unique_ptr<SystemSandbox> make_queue(
    int depth, CompletionModel::Options options = {}) {
  const Scenario& scn = scenario();
  auto sandbox = std::make_unique<SystemSandbox>(
      scn.pet, std::vector<MachineTypeId>{0}, depth + 2, /*now=*/0, options);
  const double mean = scn.pet.mean_overall();
  for (int i = 0; i < depth; ++i) {
    sandbox->enqueue(0, static_cast<TaskTypeId>(i % scn.pet.task_type_count()),
                     static_cast<Tick>(mean * (2.0 + i)));
  }
  return sandbox;
}

/// PAM's phase-1 probe against an already-cached deep tail. With the
/// revision-keyed appended-distribution cache a repeated probe is a pure
/// memo lookup, independent of the tail PMF's support width.
void BM_DeepChanceIfAppended(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  const auto deadline =
      static_cast<Tick>(scenario().pet.mean_overall() * (depth + 4.0));
  sandbox->model(0).instantaneous_robustness();  // warm the chain cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sandbox->model(0).chance_if_appended(0, deadline));
  }
}
BENCHMARK(BM_DeepChanceIfAppended)->RangeMultiplier(2)->Range(8, 64);

/// A phase-1 scan shape: many *distinct* deadlines against one warm tail.
/// Each first touch of a lattice cell folds only the O(|exec|) unsaturated
/// window on top of the cached saturated prefix; repeats are O(1).
void BM_DeepAppendedScan(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  const double mean = scenario().pet.mean_overall();
  sandbox->model(0).instantaneous_robustness();  // warm the chain cache
  const auto base = static_cast<Tick>(mean * depth);
  for (auto _ : state) {
    double sum = 0.0;
    for (Tick d = 0; d < 64; ++d) {
      sum += sandbox->model(0).chance_if_appended(0, base + 3 * d);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DeepAppendedScan)->RangeMultiplier(2)->Range(8, 64);

/// The common mapping-event mutation at depth: append one task and query
/// only the new tail. Dirty-index tracking makes this a single
/// deadline-truncated convolution regardless of queue depth.
void BM_DeepIncrementalAppend(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto deadline =
      static_cast<Tick>(scenario().pet.mean_overall() * (depth + 4.0));
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth);
    sandbox->model(0).instantaneous_robustness();  // warm the chain cache
    state.ResumeTiming();
    sandbox->enqueue(0, 0, deadline);
    benchmark::DoNotOptimize(
        sandbox->model(0).chance(sandbox->machine(0).queue.size() - 1));
  }
}
BENCHMARK(BM_DeepIncrementalAppend)->RangeMultiplier(2)->Range(8, 64);

/// The proactive heuristic's provisional-drop window (Eqs. 4-6): re-root a
/// chain at a mid-queue predecessor and re-convolve an eta-deep window,
/// entirely inside a reused workspace.
void BM_DeepWindowChance(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto sandbox = make_queue(depth);
  CompletionModel& model = sandbox->model(0);
  model.instantaneous_robustness();  // warm the chain cache
  const auto pos = static_cast<std::size_t>(depth / 2);
  PmfWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        window_chance_sum(model.predecessor(pos), sandbox->machine(0),
                          *sandbox->view().tasks, scenario().pet, pos + 1,
                          pos + 2, nullptr, &ws));
  }
}
BENCHMARK(BM_DeepWindowChance)->RangeMultiplier(2)->Range(8, 64);

/// Dense random PMF with `bins` lattice points — the wide-support regime
/// (deep provisional chains, heavy-tailed execution histograms) where the
/// O(n*m) direct kernel stops being free.
Pmf wide_pmf(std::size_t bins, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Tick, double>> points;
  points.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    points.emplace_back(static_cast<Tick>(i + 8), rng.uniform01());
  }
  Pmf pmf = Pmf::from_impulses(std::move(points), 1);
  pmf.normalize();
  return pmf;
}

/// RAII pin of the FFT crossover gate, so a bench measures one kernel
/// unconditionally and the process-global default is restored afterwards.
struct FftGatePin {
  explicit FftGatePin(std::size_t min_bins) : saved(fft_min_bins()) {
    set_fft_min_bins(min_bins);
  }
  ~FftGatePin() { set_fft_min_bins(saved); }
  std::size_t saved;
};

/// Direct-vs-FFT on equal-width operands: the crossover curve. The per-size
/// ratio of the two registrations is what kDefaultFftMinBins documents.
void BM_WideConvolve(benchmark::State& state, bool use_fft) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  const Pmf a = wide_pmf(bins, 101);
  const Pmf b = wide_pmf(bins, 202);
  const FftGatePin pin(use_fft ? 2 : 0);
  PmfWorkspace ws;
  Pmf out;
  for (auto _ : state) {
    convolve_into(a, b, ws, out);
    benchmark::DoNotOptimize(out.mass_before(static_cast<Tick>(bins)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_WideConvolve, direct, false)
    ->RangeMultiplier(2)
    ->Range(64, 8192)
    ->Complexity();
BENCHMARK_CAPTURE(BM_WideConvolve, fft, true)
    ->RangeMultiplier(2)
    ->Range(64, 8192)
    ->Complexity();

/// Deadline-truncated variant on wide operands, deadline mid-support so
/// half the predecessor mass convolves and half passes through — the Eq. 1
/// shape the chain walks actually execute.
void BM_WideDeadlineConvolve(benchmark::State& state, bool use_fft) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  const Pmf pred = wide_pmf(bins, 303);
  const Pmf exec = wide_pmf(bins, 404);
  const Tick deadline = (pred.min_time() + pred.max_time()) / 2;
  const FftGatePin pin(use_fft ? 2 : 0);
  PmfWorkspace ws;
  Pmf out;
  for (auto _ : state) {
    deadline_convolve_into(pred, exec, deadline, ws, out);
    benchmark::DoNotOptimize(out.mass_before(deadline));
  }
}
BENCHMARK_CAPTURE(BM_WideDeadlineConvolve, direct, false)
    ->RangeMultiplier(2)
    ->Range(512, 8192);
BENCHMARK_CAPTURE(BM_WideDeadlineConvolve, fft, true)
    ->RangeMultiplier(2)
    ->Range(512, 8192);

/// Conditioned clock advance on a running deep queue: with chain-keeping
/// the set_now inside the keep window is a revision bump and the query a
/// memo hit; the paranoid registration rebuilds the whole chain per step —
/// exactly what every mapping event paid before this optimisation.
void BM_ConditionedAdvance(benchmark::State& state, bool paranoid) {
  const int depth = static_cast<int>(state.range(0));
  CompletionModel::Options options;
  options.condition_running = true;
  options.paranoid_rebuild = paranoid;
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth, options);
    sandbox->set_running(0, 0);
    sandbox->model(0).instantaneous_robustness();  // warm the chain cache
    state.ResumeTiming();
    double sum = 0.0;
    for (Tick t = 1; t <= 32; ++t) {
      sandbox->set_now(t);
      sum += sandbox->model(0).instantaneous_robustness();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK_CAPTURE(BM_ConditionedAdvance, keep, false)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_ConditionedAdvance, rebuild, true)
    ->RangeMultiplier(2)
    ->Range(8, 64);

/// The failure-path fix: a head start on an up machine of a *volatile*
/// fleet. Chain-keeping recognises the start as the cached slot-0 root and
/// answers the tail query from the memo; the paranoid registration is the
/// old blanket invalidate, which re-convolves the entire queue.
void BM_VolatileHeadStart(benchmark::State& state, bool paranoid) {
  const int depth = static_cast<int>(state.range(0));
  CompletionModel::Options options;
  options.paranoid_rebuild = paranoid;
  for (auto _ : state) {
    state.PauseTiming();
    auto sandbox = make_queue(depth, options);
    sandbox->model(0).instantaneous_robustness();  // warm the chain cache
    state.ResumeTiming();
    sandbox->set_running(0, 0);
    benchmark::DoNotOptimize(
        sandbox->model(0).chance(static_cast<std::size_t>(depth) - 1));
  }
}
BENCHMARK_CAPTURE(BM_VolatileHeadStart, keep, false)
    ->RangeMultiplier(2)
    ->Range(8, 64);
BENCHMARK_CAPTURE(BM_VolatileHeadStart, rebuild, true)
    ->RangeMultiplier(2)
    ->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
