#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Ablation — PAM batch-queue deferring (disabled in the paper's "
      "comparison, section V-B3): PAM vs PAMD with and without dropping",
      taskdrop::ablation_deferral);
}
