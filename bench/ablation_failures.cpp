#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Extension — robustness under machine failures (section VI future "
      "work): PAM with reactive-only vs proactive heuristic dropping",
      taskdrop::ablation_failures);
}
