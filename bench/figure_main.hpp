#pragma once

#include <exception>
#include <iostream>

#include "exp/figures.hpp"
#include "util/flags.hpp"

namespace taskdrop::benchmain {

/// Shared driver for the per-figure bench binaries: parses --full /
/// --trials / --divisor / --seed / --csv, runs the figure generator
/// (declared as a SweepSpec in src/exp/figures.cpp) and prints the table.
/// Flag-validation errors (e.g. --trials=0) report to stderr and exit 1.
template <typename FigureFn>
int run_figure(int argc, char** argv, const char* title, FigureFn figure) {
  try {
    const Flags flags(argc, argv);
    const FigureScale scale = FigureScale::from_flags(flags);
    std::cout << title << '\n'
              << "scale: divisor=" << scale.tasks_divisor
              << " trials=" << scale.trials << " seed=" << scale.seed
              << "\n\n";
    const Table table = figure(scale);
    if (flags.get_bool("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << argv[0] << ": " << error.what() << "\n";
    return 1;
  }
}

}  // namespace taskdrop::benchmain
