#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Sensitivity — deadline-slack coefficient gamma (the reproduction's "
      "one calibrated parameter; 30k level)",
      taskdrop::ablation_gamma);
}
