#include "figure_main.hpp"

int main(int argc, char** argv) {
  return taskdrop::benchmain::run_figure(
      argc, argv,
      "Sensitivity — machine-queue capacity (paper fixes 6, running task "
      "included; 30k level)",
      taskdrop::ablation_queue_capacity);
}
