#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against the committed baseline.

    bench/check_threshold.py BASELINE NEW [--max-ratio 1.5]

Fails (exit 1) when any benchmark's cpu_time regressed by more than
--max-ratio x its baseline. The default leaves headroom for shared-runner
noise while still catching real regressions in the PMF hot paths (the
workspace kernels made the baseline fast enough that the original 3x
allowance would let an accidental extra allocation or copy through) —
tighten further locally when comparing runs on one quiet machine.

Benchmarks present on only one side are reported but never fail the check,
so adding or retiring a micro bench does not break CI.
"""
import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as fh:
        merged = json.load(fh)
    if merged.get("schema") != "taskdrop-bench-micro/v1":
        sys.exit(f"{path}: unexpected schema {merged.get('schema')!r}")
    times = {}
    for suite, payload in merged["benchmarks"].items():
        for bench in payload.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            key = f"{suite}/{bench['name']}"
            times[key] = bench["cpu_time"] * UNIT_NS[bench.get("time_unit", "ns")]
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when new/baseline cpu_time exceeds this")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.new)

    failures = []
    for key in sorted(baseline.keys() | fresh.keys()):
        if key not in baseline:
            print(f"  NEW      {key} (no baseline)")
            continue
        if key not in fresh:
            print(f"  MISSING  {key} (baseline only)")
            continue
        ratio = fresh[key] / baseline[key]
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  {status:<8} {key}: {baseline[key]:.1f} ns -> "
              f"{fresh[key]:.1f} ns ({ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append((key, ratio))

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.max_ratio}x:", file=sys.stderr)
        for key, ratio in failures:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nall benchmarks within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
