#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

    bench/check_threshold.py BASELINE NEW [--max-ratio 1.5]

Fails (exit 1) when any benchmark's cpu_time regressed by more than its
threshold x baseline. The threshold is per benchmark:

  * --max-ratio (default 1.5) is the base allowance — loose enough for
    shared-runner noise while still catching real regressions in the PMF
    hot paths;
  * benchmarks whose baseline is sub-microsecond get the base allowance
    times SUB_MICROSECOND_FACTOR: at that scale a CI runner's scheduling
    jitter and frequency steps are the same order of magnitude as the
    measurement, and the fast benches were observed to flap under a flat
    1.5x gate (see ROADMAP, CI-noise characterisation);
  * PER_BENCH_MAX_RATIO pins exact keys that need their own allowance,
    overriding both rules above.

Accepts both the micro (taskdrop-bench-micro/v1) and macro
(taskdrop-bench-macro/v1) merged-JSON schemas produced by bench/run_all.sh.
Benchmarks present on only one side are reported but never fail the check,
so adding or retiring a bench does not break CI. The threshold table is
unit-tested by bench/test_check_threshold.py (wired into ctest).
"""
import argparse
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

ACCEPTED_SCHEMAS = ("taskdrop-bench-micro/v1", "taskdrop-bench-macro/v1")

#: Baselines under this many nanoseconds are treated as noise-dominated.
SUB_MICROSECOND_NS = 1000.0

#: Extra allowance factor for noise-dominated (sub-microsecond) baselines.
SUB_MICROSECOND_FACTOR = 2.0

#: Exact-key overrides: "suite/benchmark name" -> max ratio. Takes
#: precedence over the sub-microsecond widening.
PER_BENCH_MAX_RATIO = {
    # End-to-end trials run for tens of milliseconds and average scheduler
    # noise out, so hold the big ones to a tighter bar than the kernels.
    "macro_trial/spec_hc/PAM/10k": 1.4,
    "macro_trial/spec_hc/PAM_deep/5k": 1.4,
    "macro_trial/spec_hc/MM/10k": 1.4,
}


def threshold_for(key, baseline_ns, base_ratio):
    """Max allowed new/baseline cpu_time ratio for one benchmark."""
    if key in PER_BENCH_MAX_RATIO:
        return PER_BENCH_MAX_RATIO[key]
    if baseline_ns < SUB_MICROSECOND_NS:
        return base_ratio * SUB_MICROSECOND_FACTOR
    return base_ratio


def load(path):
    with open(path) as fh:
        merged = json.load(fh)
    if merged.get("schema") not in ACCEPTED_SCHEMAS:
        sys.exit(f"{path}: unexpected schema {merged.get('schema')!r} "
                 f"(accepted: {', '.join(ACCEPTED_SCHEMAS)})")
    times = {}
    for suite, payload in merged["benchmarks"].items():
        for bench in payload.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            key = f"{suite}/{bench['name']}"
            times[key] = bench["cpu_time"] * UNIT_NS[bench.get("time_unit", "ns")]
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="base allowed new/baseline cpu_time ratio "
                             "(widened per benchmark; see module docstring)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.new)

    failures = []
    for key in sorted(baseline.keys() | fresh.keys()):
        if key not in baseline:
            print(f"  NEW      {key} (no baseline)")
            continue
        if key not in fresh:
            print(f"  MISSING  {key} (baseline only)")
            continue
        ratio = fresh[key] / baseline[key]
        allowed = threshold_for(key, baseline[key], args.max_ratio)
        status = "FAIL" if ratio > allowed else "ok"
        print(f"  {status:<8} {key}: {baseline[key]:.1f} ns -> "
              f"{fresh[key]:.1f} ns ({ratio:.2f}x, limit {allowed:.2f}x)")
        if ratio > allowed:
            failures.append((key, ratio, allowed))

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond their "
              f"threshold:", file=sys.stderr)
        for key, ratio, allowed in failures:
            print(f"  {key}: {ratio:.2f}x (limit {allowed:.2f}x)",
                  file=sys.stderr)
        return 1
    print("\nall benchmarks within their thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
